// Command loadgen is a closed-loop HTTP load generator in the style of
// the paper's client program: N simulated clients each issue requests
// "as fast as the server can handle them", replaying either a single
// path or a Common Log Format trace.
//
// Usage:
//
//	loadgen -addr localhost:8080 [-clients 64] [-duration 10s]
//	        [-path /index.html | -trace access.log |
//	         -zipf-files 5000 -zipf-skew 1.1 -zipf-path-fmt /zipf/f%05d.bin]
//	        [-keepalive]
//	        [-range-frac 0.2] [-revalidate-frac 0.2]
//	        [-large-frac 0.1 -large-path /large.bin]
//	        [-post-frac 0.1 -post-bytes 1024 -post-path /echo]
//	        [-open-conns 10000 -idle-frac 1.0 -think 1s]
//	        [-slow-write-bps 100] [-abort-frac 0.3] [-honor-retry-after]
//	        [-json out.json]
//
// -open-conns holds that many extra keep-alive connections open for
// the whole run — the idle-connection fleet used to measure per-conn
// server cost (the epoll engine's reason to exist). Each fleet conn
// performs one priming exchange; the -idle-frac share then sits fully
// idle while the rest re-request with exponentially distributed think
// times of mean -think (a Poisson arrival process per conn). Fleet
// exchanges count toward the summary like any other.
//
// -range-frac issues that fraction of requests with "Range: bytes=0-1023"
// (exercising the 206 partial-content path); -revalidate-frac issues
// conditional If-None-Match revalidations using the ETag captured from
// an earlier 200 for the same path (the 304 path); -large-frac diverts
// that fraction of requests to -large-path, mixing a byte-bound
// large-file workload (the sendfile transport's territory) into the
// request-bound one; -post-frac diverts that fraction to POSTs of
// -post-bytes bytes against -post-path (a Handler-v2 route — e.g.
// `flashd -demo` mounts /echo), exercising the request-body path. The
// summary reports per-class status counts (2xx/3xx/4xx/5xx, with 502
// and 504 broken out — the statuses a caching proxy tier sheds under
// origin failure) plus 206, 304, POST 2xx, and 413 counts alongside
// throughput in both requests/s and MB/s — large-file workloads are
// byte-bound, so the request rate alone hides transport effects —
// plus latency percentiles. -json additionally writes the whole
// summary as machine-readable JSON ("-" for stdout), which is how the
// committed BENCH_*.json trajectory files are produced.
//
// The abusive-client knobs model the traffic an overload drill throws
// at the server: -slow-write-bps throttles every request write to that
// byte rate (a slowloris-style slow writer holding server-side state
// open); -abort-frac abandons that fraction of responses mid-body,
// closing the connection with bytes still in flight. -honor-retry-after
// makes clients well-behaved on the other side of the exchange: a 503
// carrying Retry-After parks the client for that many seconds before
// its next request, so a shedding server sees offered load actually
// back off. The summary counts throttled writes, aborted responses,
// 503s, and honored backoff waits.
//
// -zipf-files draws request paths from a Zipf distribution over N
// synthetic file names (rank 0 the hottest) — the bigger-than-RAM
// working-set shape of the paper's Figure 6, and the workload that
// exercises the cache store's miss coalescing: a skewed miss storm
// over a docroot too large for the chunk budget. The docroot must
// already contain the files the pattern names (e.g. seeded by a
// one-off script); loadgen only generates the request stream.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/httpmsg"
	"repro/internal/metrics"
	"repro/internal/workload"
)

type counters struct {
	responses   atomic.Uint64
	bytes       atomic.Int64
	errors      atomic.Uint64
	partial     atomic.Uint64 // 206 responses
	notModified atomic.Uint64 // 304 responses
	postOK      atomic.Uint64 // 2xx responses to POSTs
	tooLarge    atomic.Uint64 // 413 responses (body refused)

	// Status classes, plus the two gateway statuses a caching proxy
	// tier sheds under origin failure — the numbers a failover run is
	// judged by (zero 502/504 with a survivor up).
	class2xx   atomic.Uint64
	class3xx   atomic.Uint64
	class4xx   atomic.Uint64
	class5xx   atomic.Uint64
	badGateway atomic.Uint64 // 502 responses
	gwTimeout  atomic.Uint64 // 504 responses
	svcUnavail atomic.Uint64 // 503 responses (overload sheds)

	// Abusive-client and backoff accounting.
	slowWrites atomic.Uint64 // requests written under -slow-write-bps
	aborted    atomic.Uint64 // responses abandoned mid-body (-abort-frac)
	retryWaits atomic.Uint64 // Retry-After backoffs honored
}

// classify buckets one response status into its class counters.
func (c *counters) classify(status int) {
	switch {
	case status >= 200 && status < 300:
		c.class2xx.Add(1)
	case status >= 300 && status < 400:
		c.class3xx.Add(1)
	case status >= 400 && status < 500:
		c.class4xx.Add(1)
	case status >= 500:
		c.class5xx.Add(1)
	}
	switch status {
	case 502:
		c.badGateway.Add(1)
	case 503:
		c.svcUnavail.Add(1)
	case 504:
		c.gwTimeout.Add(1)
	}
}

func main() {
	var (
		addr       = flag.String("addr", "localhost:8080", "server host:port")
		clients    = flag.Int("clients", 64, "concurrent closed-loop clients")
		duration   = flag.Duration("duration", 10*time.Second, "measurement duration")
		path       = flag.String("path", "/index.html", "single path to request")
		traceFile  = flag.String("trace", "", "CLF access log to replay (overrides -path)")
		keepAlive  = flag.Bool("keepalive", false, "use persistent connections")
		rangeFrac  = flag.Float64("range-frac", 0, "fraction of requests sent as Range requests (0..1)")
		revalFrac  = flag.Float64("revalidate-frac", 0, "fraction of requests sent as If-None-Match revalidations (0..1)")
		largeFrac  = flag.Float64("large-frac", 0, "fraction of requests diverted to -large-path (0..1)")
		largePath  = flag.String("large-path", "/large.bin", "path requested by the -large-frac share of the mix")
		postFrac   = flag.Float64("post-frac", 0, "fraction of requests sent as POSTs with a body (0..1)")
		postBytes  = flag.Int("post-bytes", 1024, "body size of generated POSTs")
		postPath   = flag.String("post-path", "/echo", "path POSTed to by the -post-frac share of the mix")
		zipfFiles  = flag.Int("zipf-files", 0, "draw paths Zipf-distributed over this many synthetic files (overrides -path/-trace)")
		zipfSkew   = flag.Float64("zipf-skew", 1.1, "Zipf exponent (> 1) for -zipf-files; larger = more skew")
		zipfFmt    = flag.String("zipf-path-fmt", "/zipf/f%05d.bin", "printf pattern mapping a Zipf rank to a request path")
		zipfSeed   = flag.Int64("zipf-seed", 1, "PRNG seed for the -zipf-files request stream")
		slowBps    = flag.Int("slow-write-bps", 0, "throttle request writes to this byte rate (slowloris-style slow clients)")
		abortFrac  = flag.Float64("abort-frac", 0, "fraction of responses abandoned mid-body with a connection close (0..1)")
		honorRetry = flag.Bool("honor-retry-after", false, "back off for Retry-After seconds after a 503 before the next request")
		openConns  = flag.Int("open-conns", 0, "background keep-alive connections held open for the whole run (idle-conn fleet)")
		idleFrac   = flag.Float64("idle-frac", 1.0, "fraction of -open-conns that stay fully idle after one priming exchange (0..1); the rest re-request with Poisson think time")
		thinkTime  = flag.Duration("think", time.Second, "mean think time (exponential) for the non-idle share of -open-conns")
		jsonOut    = flag.String("json", "", "write a machine-readable JSON summary to this file (\"-\" = stdout)")
	)
	flag.Parse()

	paths := []string{*path}
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
		tr, skipped, err := workload.FromCLF("replay", f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
		paths = paths[:0]
		for _, e := range tr.Entries {
			paths = append(paths, e.Path)
		}
		fmt.Printf("loaded %d requests over %d files (%d lines skipped)\n",
			len(tr.Entries), tr.NumFiles(), skipped)
	}
	if len(paths) == 0 {
		fmt.Fprintln(os.Stderr, "loadgen: nothing to request")
		os.Exit(1)
	}

	var (
		c      counters
		cursor atomic.Int64
		// One histogram per client, merged after the run, so the hot
		// path records latencies without a shared lock.
		hists = make([]metrics.Histogram, *clients)
		stop  = make(chan struct{})
		wg    sync.WaitGroup
	)
	next := func() string {
		i := cursor.Add(1) - 1
		return paths[int(i)%len(paths)]
	}
	if *zipfFiles > 0 {
		if *zipfSkew <= 1 {
			fmt.Fprintln(os.Stderr, "loadgen: -zipf-skew must be > 1")
			os.Exit(1)
		}
		z := rand.NewZipf(rand.New(rand.NewSource(*zipfSeed)), *zipfSkew, 1, uint64(*zipfFiles-1))
		var zmu sync.Mutex
		next = func() string {
			zmu.Lock()
			rank := z.Uint64()
			zmu.Unlock()
			return fmt.Sprintf(*zipfFmt, rank)
		}
	}

	mix := clientMix{
		rangeFrac:  *rangeFrac,
		revalFrac:  *revalFrac,
		largeFrac:  *largeFrac,
		largePath:  *largePath,
		postFrac:   *postFrac,
		postBytes:  *postBytes,
		postPath:   *postPath,
		slowBps:    *slowBps,
		abortFrac:  *abortFrac,
		honorRetry: *honorRetry,
	}
	start := time.Now()
	if *openConns > 0 {
		idleCut := int(float64(*openConns) * *idleFrac)
		for i := 0; i < *openConns; i++ {
			wg.Add(1)
			go func(seed int64, idle bool) {
				defer wg.Done()
				runFleetConn(*addr, next, idle, *thinkTime, seed, stop, &c)
			}(int64(i), i < idleCut)
		}
	}
	for i := 0; i < *clients; i++ {
		wg.Add(1)
		go func(h *metrics.Histogram) {
			defer wg.Done()
			runClient(*addr, *keepAlive, mix, next, stop, &c, h.Observe)
		}(&hists[i])
	}
	time.Sleep(*duration)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)

	hist := &metrics.Histogram{}
	for i := range hists {
		hist.Merge(&hists[i])
	}

	sum := metrics.Summary{
		Duration:  elapsed,
		Responses: c.responses.Load(),
		Bytes:     c.bytes.Load(),
		Errors:    c.errors.Load(),
	}
	fmt.Printf("clients:     %d (keepalive=%v)\n", *clients, *keepAlive)
	if *openConns > 0 {
		fmt.Printf("fleet:       %d open conns (idle-frac=%.2f, think=%v)\n",
			*openConns, *idleFrac, *thinkTime)
	}
	fmt.Printf("duration:    %v\n", elapsed.Round(time.Millisecond))
	fmt.Printf("responses:   %d (%.1f req/s)\n", sum.Responses, sum.RequestsPerSec())
	fmt.Printf("status:      2xx=%d 3xx=%d 4xx=%d 5xx=%d (502=%d 504=%d)\n",
		c.class2xx.Load(), c.class3xx.Load(), c.class4xx.Load(), c.class5xx.Load(),
		c.badGateway.Load(), c.gwTimeout.Load())
	fmt.Printf("partial:     %d (206 range responses)\n", c.partial.Load())
	fmt.Printf("revalidated: %d (304 not-modified responses)\n", c.notModified.Load())
	if *postFrac > 0 {
		fmt.Printf("posted:      %d accepted (2xx), %d refused (413)\n",
			c.postOK.Load(), c.tooLarge.Load())
	}
	if *slowBps > 0 {
		fmt.Printf("slow-write:  %d requests throttled to %d B/s\n",
			c.slowWrites.Load(), *slowBps)
	}
	if *abortFrac > 0 {
		fmt.Printf("aborted:     %d responses abandoned mid-body\n", c.aborted.Load())
	}
	if *honorRetry {
		fmt.Printf("backoff:     %d Retry-After waits honored (503=%d)\n",
			c.retryWaits.Load(), c.svcUnavail.Load())
	}
	// Both units: large-file workloads are byte-bound, so MB/s is the
	// number that moves when the transport does; req/s hides it.
	fmt.Printf("throughput:  %.2f MB/s (%.2f Mb/s)\n",
		float64(sum.Bytes)/1e6/elapsed.Seconds(), sum.MbitPerSec())
	fmt.Printf("errors:      %d\n", sum.Errors)
	fmt.Printf("latency:     mean=%v p50=%v p90=%v p99=%v max=%v\n",
		hist.Mean().Round(time.Microsecond),
		hist.Quantile(0.5).Round(time.Microsecond),
		hist.Quantile(0.9).Round(time.Microsecond),
		hist.Quantile(0.99).Round(time.Microsecond),
		hist.Max().Round(time.Microsecond))

	if *jsonOut != "" {
		js := jsonSummary{
			Clients:        *clients,
			OpenConns:      *openConns,
			IdleFrac:       *idleFrac,
			KeepAlive:      *keepAlive,
			DurationSec:    elapsed.Seconds(),
			Responses:      sum.Responses,
			RequestsPerSec: sum.RequestsPerSec(),
			Bytes:          sum.Bytes,
			MBPerSec:       float64(sum.Bytes) / 1e6 / elapsed.Seconds(),
			MbitPerSec:     sum.MbitPerSec(),
			Errors:         sum.Errors,
			Status: statusCounts{
				Class2xx:       c.class2xx.Load(),
				Class3xx:       c.class3xx.Load(),
				Class4xx:       c.class4xx.Load(),
				Class5xx:       c.class5xx.Load(),
				Partial206:     c.partial.Load(),
				NotModified304: c.notModified.Load(),
				PostOK2xx:      c.postOK.Load(),
				TooLarge413:    c.tooLarge.Load(),
				BadGateway502:  c.badGateway.Load(),
				SvcUnavail503:  c.svcUnavail.Load(),
				GwTimeout504:   c.gwTimeout.Load(),
			},
			SlowWriteBps: *slowBps,
			SlowWrites:   c.slowWrites.Load(),
			Aborted:      c.aborted.Load(),
			RetryWaits:   c.retryWaits.Load(),
			LatencyUsec: latencySummary{
				Mean: hist.Mean().Microseconds(),
				P50:  hist.Quantile(0.5).Microseconds(),
				P90:  hist.Quantile(0.9).Microseconds(),
				P99:  hist.Quantile(0.99).Microseconds(),
				Max:  hist.Max().Microseconds(),
			},
			GOOS:   runtime.GOOS,
			GOARCH: runtime.GOARCH,
			CPUs:   runtime.NumCPU(),
		}
		enc, err := json.MarshalIndent(js, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
		enc = append(enc, '\n')
		if *jsonOut == "-" {
			os.Stdout.Write(enc)
		} else if err := os.WriteFile(*jsonOut, enc, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
	}
}

// jsonSummary is the machine-readable form of the run summary emitted
// by -json; BENCH_*.json files embed it verbatim.
type jsonSummary struct {
	Clients        int            `json:"clients"`
	OpenConns      int            `json:"open_conns,omitempty"`
	IdleFrac       float64        `json:"idle_frac,omitempty"`
	KeepAlive      bool           `json:"keepalive"`
	DurationSec    float64        `json:"duration_sec"`
	Responses      uint64         `json:"responses"`
	RequestsPerSec float64        `json:"requests_per_sec"`
	Bytes          int64          `json:"bytes"`
	MBPerSec       float64        `json:"mb_per_sec"`
	MbitPerSec     float64        `json:"mbit_per_sec"`
	Errors         uint64         `json:"errors"`
	SlowWriteBps   int            `json:"slow_write_bps,omitempty"`
	SlowWrites     uint64         `json:"slow_writes,omitempty"`
	Aborted        uint64         `json:"aborted,omitempty"`
	RetryWaits     uint64         `json:"retry_waits,omitempty"`
	Status         statusCounts   `json:"status_counts"`
	LatencyUsec    latencySummary `json:"latency_usec"`
	GOOS           string         `json:"goos"`
	GOARCH         string         `json:"goarch"`
	CPUs           int            `json:"cpus"`
}

type statusCounts struct {
	Class2xx       uint64 `json:"status_2xx"`
	Class3xx       uint64 `json:"status_3xx"`
	Class4xx       uint64 `json:"status_4xx"`
	Class5xx       uint64 `json:"status_5xx"`
	Partial206     uint64 `json:"partial_206"`
	NotModified304 uint64 `json:"not_modified_304"`
	PostOK2xx      uint64 `json:"post_ok_2xx"`
	TooLarge413    uint64 `json:"too_large_413"`
	BadGateway502  uint64 `json:"bad_gateway_502"`
	SvcUnavail503  uint64 `json:"service_unavailable_503"`
	GwTimeout504   uint64 `json:"gateway_timeout_504"`
}

type latencySummary struct {
	Mean int64 `json:"mean"`
	P50  int64 `json:"p50"`
	P90  int64 `json:"p90"`
	P99  int64 `json:"p99"`
	Max  int64 `json:"max"`
}

// clientMix describes the simulated client's request mix: which
// fractions of requests are diverted to the large-file path, sent as
// Range requests, sent as conditional revalidations, or sent as
// bodied POSTs.
type clientMix struct {
	rangeFrac  float64
	revalFrac  float64
	largeFrac  float64
	largePath  string
	postFrac   float64
	postBytes  int
	postPath   string
	slowBps    int     // throttle request writes to this byte rate
	abortFrac  float64 // abandon this fraction of responses mid-body
	honorRetry bool    // back off on 503 + Retry-After
}

// runClient is one closed-loop client. All mix fractions use error
// diffusion (exact fractions, no RNG); revalidations reuse the ETag
// captured from an earlier 200 for the same path.
func runClient(addr string, keepAlive bool, mix clientMix,
	next func() string, stop <-chan struct{}, c *counters, observe func(time.Duration)) {
	var conn net.Conn
	var br *bufio.Reader
	var rangeAcc, revalAcc, largeAcc, postAcc, abortAcc float64
	etags := make(map[string]string)
	var postBody string
	if mix.postFrac > 0 {
		postBody = strings.Repeat("p", mix.postBytes)
	}
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	for {
		select {
		case <-stop:
			return
		default:
		}
		if conn == nil {
			nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
			if err != nil {
				c.errors.Add(1)
				time.Sleep(50 * time.Millisecond)
				continue
			}
			conn = nc
			br = bufio.NewReader(conn)
		}
		// Every accumulator advances every iteration so each knob stays
		// an exact fraction of ALL requests (error diffusion), but a
		// token is only CONSUMED on an iteration where it can apply —
		// POST wins the request shape, then revalidate over range. With
		// commensurate fractions the firing patterns phase-lock (e.g.
		// -post-frac 0.3 -range-frac 0.1 fire on exactly the same every
		// tenth request), so consuming a blocked token would silently
		// zero the smaller share; deferring it to the next eligible
		// request keeps every fraction exact.
		path := next()
		method, body := "GET", ""
		if mix.postFrac > 0 {
			postAcc += mix.postFrac
			if postAcc >= 1 {
				postAcc--
				method, body, path = "POST", postBody, mix.postPath
			}
		}
		if mix.largeFrac > 0 {
			largeAcc += mix.largeFrac
			if largeAcc >= 1 && method == "GET" {
				largeAcc--
				path = mix.largePath
			}
		}
		extra := ""
		if method == "POST" {
			extra = fmt.Sprintf("Content-Length: %d\r\n", len(body))
		}
		if mix.revalFrac > 0 {
			revalAcc += mix.revalFrac
			if revalAcc >= 1 && method == "GET" {
				revalAcc--
				if et := etags[path]; et != "" {
					extra = "If-None-Match: " + et + "\r\n"
				}
			}
		}
		if mix.rangeFrac > 0 {
			rangeAcc += mix.rangeFrac
			if rangeAcc >= 1 && method == "GET" && extra == "" {
				rangeAcc--
				extra = "Range: bytes=0-1023\r\n"
			}
		}
		opts := reqOpts{slowBps: mix.slowBps}
		if mix.abortFrac > 0 {
			abortAcc += mix.abortFrac
			if abortAcc >= 1 {
				abortAcc--
				opts.abort = true
			}
		}
		begin := time.Now()
		res, err := doRequest(conn, br, method, path, body, keepAlive, extra, opts)
		if err != nil {
			c.errors.Add(1)
			conn.Close()
			conn = nil
			continue
		}
		observe(time.Since(begin))
		if mix.slowBps > 0 {
			c.slowWrites.Add(1)
		}
		if res.aborted {
			c.aborted.Add(1)
		}
		c.responses.Add(1)
		c.bytes.Add(res.bodyBytes)
		c.classify(res.status)
		switch {
		case res.status == 206:
			c.partial.Add(1)
		case res.status == 304:
			c.notModified.Add(1)
		case res.status == 413:
			c.tooLarge.Add(1)
		case res.status == 200 && method == "GET":
			if res.etag != "" {
				etags[path] = res.etag
			}
		}
		if method == "POST" && res.status >= 200 && res.status < 300 {
			c.postOK.Add(1)
		}
		if !res.keep {
			conn.Close()
			conn = nil
		}
		if mix.honorRetry && res.status == 503 {
			// A well-behaved client takes the server's shed seriously:
			// park for the advertised window before offering more load.
			wait := time.Duration(res.retryAfter) * time.Second
			if wait <= 0 {
				wait = time.Second
			}
			c.retryWaits.Add(1)
			select {
			case <-stop:
				return
			case <-time.After(wait):
			}
		}
	}
}

// runFleetConn is one member of the -open-conns idle fleet: dial, one
// priming keep-alive exchange, then either park until the run ends
// (idle) or re-request forever with exponentially distributed think
// gaps of the given mean — each conn an independent Poisson arrival
// process. A dropped conn (server close, error) redials so the fleet
// size holds for the whole run.
func runFleetConn(addr string, next func() string, idle bool, think time.Duration,
	seed int64, stop <-chan struct{}, c *counters) {
	rng := rand.New(rand.NewSource(seed))
	var conn net.Conn
	var br *bufio.Reader
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	for {
		select {
		case <-stop:
			return
		default:
		}
		if conn == nil {
			nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
			if err != nil {
				c.errors.Add(1)
				select {
				case <-stop:
					return
				case <-time.After(100 * time.Millisecond):
				}
				continue
			}
			conn, br = nc, bufio.NewReader(nc)
			res, err := doRequest(conn, br, "GET", next(), "", true, "", reqOpts{})
			if err != nil || !res.keep {
				c.errors.Add(1)
				conn.Close()
				conn = nil
				continue
			}
			c.responses.Add(1)
			c.bytes.Add(res.bodyBytes)
			c.classify(res.status)
			// The priming exchange set a 30s deadline; clear it so the
			// parked conn does not trip it while idle.
			conn.SetDeadline(time.Time{})
		}
		if idle {
			<-stop // hold the conn open, perfectly quiet
			return
		}
		gap := time.Duration(rng.ExpFloat64() * float64(think))
		select {
		case <-stop:
			return
		case <-time.After(gap):
		}
		res, err := doRequest(conn, br, "GET", next(), "", true, "", reqOpts{})
		if err != nil || !res.keep {
			if err != nil {
				c.errors.Add(1)
			}
			conn.Close()
			conn = nil
			continue
		}
		c.responses.Add(1)
		c.bytes.Add(res.bodyBytes)
		c.classify(res.status)
		conn.SetDeadline(time.Time{})
	}
}

// respResult summarizes one exchange.
type respResult struct {
	status     int
	bodyBytes  int64
	etag       string
	keep       bool
	retryAfter int  // Retry-After seconds on a reject, 0 when absent
	aborted    bool // response abandoned mid-body (reqOpts.abort)
}

// reqOpts carries the abusive-client behaviors one exchange applies.
type reqOpts struct {
	slowBps int  // > 0: throttle the request write to this byte rate
	abort   bool // abandon the response mid-body and close
}

// writeThrottled writes data at roughly bps bytes per second, in small
// bursts — the slow-writer shape that holds a server-side connection
// in its header-read state for seconds.
func writeThrottled(conn net.Conn, data []byte, bps int) error {
	if bps <= 0 {
		_, err := conn.Write(data)
		return err
	}
	const interval = 100 * time.Millisecond
	chunk := bps / 10
	if chunk < 1 {
		chunk = 1
	}
	for len(data) > 0 {
		n := chunk
		if n > len(data) {
			n = len(data)
		}
		if _, err := conn.Write(data[:n]); err != nil {
			return err
		}
		data = data[n:]
		if len(data) > 0 {
			time.Sleep(interval)
		}
	}
	return nil
}

// doRequest writes one request (plus optional extra headers and body)
// and reads the complete response.
func doRequest(conn net.Conn, br *bufio.Reader, method, path, body string, keepAlive bool, extra string, opts reqOpts) (respResult, error) {
	connHdr := "close"
	proto := "HTTP/1.0"
	if keepAlive {
		connHdr = "keep-alive"
		proto = "HTTP/1.1"
	}
	conn.SetDeadline(time.Now().Add(30 * time.Second))
	req := fmt.Sprintf("%s %s %s\r\nHost: loadgen\r\n%sConnection: %s\r\n\r\n%s",
		method, path, proto, extra, connHdr, body)
	if err := writeThrottled(conn, []byte(req), opts.slowBps); err != nil {
		return respResult{}, err
	}

	// Read the response header.
	var hdr []byte
	for {
		line, err := br.ReadBytes('\n')
		if err != nil {
			return respResult{}, err
		}
		hdr = append(hdr, line...)
		if len(hdr) > httpmsg.MaxHeaderLen {
			return respResult{}, fmt.Errorf("header too large")
		}
		if string(line) == "\r\n" || string(line) == "\n" {
			break
		}
	}
	var res respResult
	lines := strings.Split(string(hdr), "\n")
	if fields := strings.Fields(lines[0]); len(fields) >= 2 {
		if v, err := strconv.Atoi(fields[1]); err == nil {
			res.status = v
		}
	}
	if res.status == 0 {
		return respResult{}, fmt.Errorf("bad status line %q", lines[0])
	}
	length, hasLength := int64(-1), false
	chunked := false
	for _, line := range lines[1:] {
		line = strings.TrimRight(line, "\r")
		colon := strings.IndexByte(line, ':')
		if colon < 0 {
			continue
		}
		key := strings.ToLower(strings.TrimSpace(line[:colon]))
		val := strings.TrimSpace(line[colon+1:])
		switch key {
		case "content-length":
			if v, err := httpmsg.ParseContentLength(val); err == nil {
				length, hasLength = v, true
			}
		case "transfer-encoding":
			chunked = strings.EqualFold(val, "chunked")
		case "connection":
			res.keep = strings.Contains(strings.ToLower(val), "keep-alive")
		case "etag":
			res.etag = val
		case "retry-after":
			if v, err := strconv.Atoi(val); err == nil && v > 0 {
				res.retryAfter = v
			}
		}
	}
	res.keep = res.keep && keepAlive

	if res.status == 304 || res.status == 204 {
		return res, nil // no body by definition
	}
	if opts.abort && (chunked || !hasLength || length > 0) {
		// Abandon mid-body: take at most 1 KB of a known-length body
		// (never more than the server will send, so this cannot block),
		// then leave the rest in flight — the caller closes on !keep.
		if hasLength {
			take := length
			if take > 1024 {
				take = 1024
			}
			n, _ := io.CopyN(io.Discard, br, take)
			res.bodyBytes = n
		}
		res.keep = false
		res.aborted = true
		return res, nil
	}
	if chunked {
		n, err := discardChunked(br)
		res.bodyBytes = n
		return res, err
	}
	if hasLength {
		n, err := io.CopyN(io.Discard, br, length)
		res.bodyBytes = n
		return res, err
	}
	// Close-delimited body.
	n, err := io.Copy(io.Discard, br)
	res.bodyBytes, res.keep = n, false
	if err != nil && err != io.EOF {
		return res, err
	}
	return res, nil
}

// discardChunked consumes a chunked body (dynamic HTTP/1.1 responses),
// returning the payload byte count.
func discardChunked(br *bufio.Reader) (int64, error) {
	var total int64
	for {
		sz, err := br.ReadString('\n')
		if err != nil {
			return total, err
		}
		n, err := strconv.ParseInt(strings.TrimRight(sz, "\r\n"), 16, 64)
		if err != nil || n < 0 {
			return total, fmt.Errorf("bad chunk size %q", sz)
		}
		// Chunk data plus its trailing CRLF; the zero chunk carries only
		// the terminator line.
		skip := n + 2
		if n == 0 {
			skip = 2
		}
		if _, err := io.CopyN(io.Discard, br, skip); err != nil {
			return total, err
		}
		if n == 0 {
			return total, nil
		}
		total += n
	}
}
