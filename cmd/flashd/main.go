// Command flashd runs the Flash web server: an AMPED-architecture
// static file server with pathname/header/chunk caching, helper-based
// disk I/O, an optional status endpoint, and optional Handler-v2 demo
// mounts.
//
// Usage:
//
//	flashd -root ./public [-addr :8080] [-loops N] [-helpers 8] [-status]
//	       [-userdir-base /home -userdir-suffix public_html]
//	       [-access-log access.log]
//	       [-conn-engine goroutine|epoll]
//	       [-cache-engine heap|mmap]
//	       [-cache-path-entries 6000] [-cache-header-entries 6000]
//	       [-cache-map-mb 64] [-cache-chunk-kb 64] [-cache-l1-kb 0]
//	       [-cache-no-coalesce] [-cache-no-replicate]
//	       [-sendfile-threshold 262144] [-max-body 8388608] [-demo]
//	       [-upstream host:port,host:port -upstream-prefix /]
//	       [-max-conns N] [-max-conns-per-ip N] [-shed-queue N]
//	       [-retry-after 1] [-stale-if-error 30s]
//
// The overload knobs mirror flash.Config's admission-control layer:
// -max-conns and -max-conns-per-ip reject excess connections with a
// 503 + Retry-After, -shed-queue sheds new cache-miss work once the
// helper queue passes that depth (warm hits keep serving), and
// -stale-if-error lets the proxy tier answer origin failures from
// expired cache entries for that long past expiry. The /server-status
// "overload" line reports the reject/shed/reap counters.
//
// The cache knobs mirror flash.Config.Cache: budgets are server-wide
// (the store owns them; shard count no longer divides the effective
// cache size). -path-cache and -map-cache-mb remain as deprecated
// aliases for -cache-path-entries and -cache-map-mb.
//
// -upstream turns flashd into a caching reverse proxy: requests under
// -upstream-prefix (default "/") that miss the local docroot routes are
// fetched from the backend pool (round-robin, keep-alive reuse,
// circuit breakers, retry-on-idempotent) and cached under the origin's
// freshness policy. With -status, /server-status reports per-backend
// health; `?format=json` emits the whole status as JSON.
//
// -demo mounts three dynamic routes that exercise the Handler v2 API:
//
//	POST /echo    a native flash.Handler that streams the request body
//	              straight back (Content-Type preserved) — the target
//	              for `loadgen -post-frac`
//	POST /upload  an unmodified net/http handler behind
//	              flashhttp.Adapter that counts the uploaded bytes and
//	              reports them as JSON
//	GET  /gen     an origin simulator for proxy benchmarking: emits a
//	              deterministic body with a stable ETag and honors
//	              If-None-Match with a 304. Query knobs: bytes=N
//	              (payload size), delay=DUR (pre-response sleep, e.g.
//	              5ms), ttl=SECS (Cache-Control max-age), cc=VAL (raw
//	              Cache-Control override, e.g. no-store)
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/flash"
	"repro/internal/flashhttp"
	"repro/internal/httpmsg"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		root       = flag.String("root", "", "document root (required)")
		loops      = flag.Int("loops", 0, "event-loop shards (0 = one per CPU)")
		helpers    = flag.Int("helpers", 8, "disk helper goroutines per shard")
		connEng    = flag.String("conn-engine", "goroutine", "connection engine: goroutine (portable, 3 goroutines/conn) or epoll (Linux readiness loop, zero goroutines per idle conn)")
		idleTO     = flag.Duration("idle-timeout", 0, "keep-alive idle timeout (0 = built-in default; idle-conn soaks raise this)")
		cacheEng   = flag.String("cache-engine", "heap", "chunk cache engine: heap (copied buffers) or mmap (refcounted mmap(2) views; heap fallback off Linux)")
		cachePaths = flag.Int("cache-path-entries", 6000, "pathname cache entries (server-wide)")
		cacheHdrs  = flag.Int("cache-header-entries", 0, "header cache entries (0 = same as -cache-path-entries)")
		cacheMapMB = flag.Int64("cache-map-mb", 64, "chunk cache byte budget (MB, server-wide — the store owns it, shards share it)")
		cacheChunk = flag.Int64("cache-chunk-kb", 0, "chunk size in KiB (0 = built-in default)")
		cacheL1    = flag.Int64("cache-l1-kb", 0, "per-shard L1 replica budget in KiB (0 = auto-size, negative disables the L1)")
		noCoalesce = flag.Bool("cache-no-coalesce", false, "disable single-flight miss coalescing (v1 per-chunk reads)")
		noReplica  = flag.Bool("cache-no-replicate", false, "disable per-shard L1 hot-set replication")
		pathCache  = flag.Int("path-cache", 6000, "deprecated alias for -cache-path-entries")
		mapCacheMB = flag.Int64("map-cache-mb", 64, "deprecated alias for -cache-map-mb")
		userBase   = flag.String("userdir-base", "", "base directory for /~user/ translation")
		userSuffix = flag.String("userdir-suffix", "public_html", "suffix for /~user/ translation")
		accessLog  = flag.String("access-log", "", "Common Log Format access log file")
		status     = flag.Bool("status", false, "serve live statistics at /server-status")
		noAlign    = flag.Bool("no-align", false, "disable 32-byte response header alignment")
		sfThresh   = flag.Int64("sendfile-threshold", flash.DefaultSendfileThreshold,
			"minimum body bytes for the zero-copy sendfile transport (0 disables)")
		maxBody = flag.Int64("max-body", flash.DefaultMaxBodyBytes,
			"request body cap in bytes (larger bodies draw 413; 0 removes the cap)")
		maxConns     = flag.Int("max-conns", 0, "admission cap on concurrent connections (0 = unlimited); excess conns get 503 + Retry-After")
		maxConnsIP   = flag.Int("max-conns-per-ip", 0, "per-client-IP connection cap (0 = unlimited)")
		shedQueue    = flag.Int("shed-queue", 0, "helper-queue depth watermark above which new cache-miss work sheds with 503 (0 = never shed)")
		retryAfter   = flag.Int("retry-after", 0, "Retry-After seconds advertised on overload 503s (0 = default 1)")
		staleIfError = flag.Duration("stale-if-error", 0, "serve expired proxy entries this long past expiry when the origin fails (0 = only explicit origin stale-if-error directives; negative disables)")
		demo         = flag.Bool("demo", false, "mount the /echo, /upload and /gen dynamic demo handlers")
		upstream     = flag.String("upstream", "", "comma-separated backend host:port list — serve -upstream-prefix as a caching reverse proxy over this pool")
		upPrefix     = flag.String("upstream-prefix", "/", "path prefix proxied to -upstream backends")
	)
	flag.Parse()
	if *root == "" {
		fmt.Fprintln(os.Stderr, "flashd: -root is required")
		flag.Usage()
		os.Exit(2)
	}

	// The deprecated flat aliases win only when set explicitly and the
	// grouped flag is not.
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	pathEntries := *cachePaths
	if set["path-cache"] && !set["cache-path-entries"] {
		pathEntries = *pathCache
	}
	mapMB := *cacheMapMB
	if set["map-cache-mb"] && !set["cache-map-mb"] {
		mapMB = *mapCacheMB
	}
	hdrEntries := *cacheHdrs
	if hdrEntries == 0 {
		hdrEntries = pathEntries
	}
	l1Bytes := *cacheL1 << 10
	if *cacheL1 < 0 {
		l1Bytes = -1 // flag's "negative = off" → config's negative sentinel
	}

	cfg := flash.Config{
		DocRoot:     *root,
		EventLoops:  *loops,
		NumHelpers:  *helpers,
		ConnEngine:  *connEng,
		IdleTimeout: *idleTO,
		Cache: flash.CacheConfig{
			Engine:             *cacheEng,
			PathEntries:        pathEntries,
			HeaderEntries:      hdrEntries,
			MapBytes:           mapMB << 20,
			ChunkBytes:         *cacheChunk << 10,
			L1Bytes:            l1Bytes,
			DisableCoalescing:  *noCoalesce,
			DisableReplication: *noReplica,
		},
		UserDirBase:        *userBase,
		UserDirSuffix:      *userSuffix,
		DisableHeaderAlign: *noAlign,
		SendfileThreshold:  *sfThresh,
		MaxBodyBytes:       *maxBody,
		MaxConns:           *maxConns,
		MaxConnsPerIP:      *maxConnsIP,
		ShedQueueDepth:     *shedQueue,
		RetryAfter:         *retryAfter,
		StaleIfError:       *staleIfError,
	}
	if *sfThresh == 0 {
		// The flag's "0 = off" maps to the config's negative sentinel
		// (a zero Config field means "use the default threshold").
		cfg.SendfileThreshold = -1
	}
	if *maxBody == 0 {
		cfg.MaxBodyBytes = -1 // flag's "0 = uncapped" → negative sentinel
	}
	if *upstream != "" {
		for _, b := range strings.Split(*upstream, ",") {
			if b = strings.TrimSpace(b); b != "" {
				cfg.Upstream = append(cfg.Upstream, b)
			}
		}
		cfg.UpstreamPrefix = *upPrefix
	}
	if *accessLog != "" {
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatalf("flashd: %v", err)
		}
		defer f.Close()
		bw := bufio.NewWriter(f)
		defer bw.Flush()
		cfg.AccessLog = bw
	}

	srv, err := flash.New(cfg)
	if err != nil {
		log.Fatalf("flashd: %v", err)
	}
	if *demo {
		// A native v2 handler: stream the body straight back. The copy
		// loop below never holds more than one pipe buffer — uploads of
		// any size flow through without buffering whole.
		srv.HandleFunc("POST", "/echo", func(w flash.ResponseWriter, r *flash.Request) {
			if ct := r.Headers["content-type"]; ct != "" {
				w.Header().Set("Content-Type", ct)
			}
			if r.ContentLength >= 0 {
				w.Header().Set("Content-Length", fmt.Sprint(r.ContentLength))
			}
			if _, err := io.Copy(w, r.Body); err != nil {
				// Refused or truncated upload: report it when nothing
				// has been echoed yet (WriteHeader is a no-op once the
				// response started; the teardown then carries the news).
				if err == flash.ErrBodyTooLarge {
					w.WriteHeader(413)
				} else {
					w.WriteHeader(400)
				}
			}
		})
		// The same workload through an unmodified net/http handler.
		srv.Handle("POST", "/upload", flashhttp.Adapter(
			http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				n, err := io.Copy(io.Discard, r.Body)
				if err != nil {
					http.Error(w, err.Error(), http.StatusBadRequest)
					return
				}
				w.Header().Set("Content-Type", "application/json")
				json.NewEncoder(w).Encode(map[string]int64{"bytes": n})
			})))
		// An origin simulator for proxy benchmarking: deterministic
		// body, stable ETag, honest 304s, tunable latency and freshness.
		srv.HandleFunc("GET", "/gen", func(w flash.ResponseWriter, r *flash.Request) {
			q := parseQuery(r.Query)
			n := 1024
			if v, err := strconv.Atoi(q["bytes"]); err == nil && v >= 0 {
				n = v
			}
			if d, err := time.ParseDuration(q["delay"]); err == nil && d > 0 {
				time.Sleep(d)
			}
			cc := q["cc"]
			if cc == "" {
				ttl := 60
				if v, err := strconv.Atoi(q["ttl"]); err == nil && v >= 0 {
					ttl = v
				}
				cc = fmt.Sprintf("max-age=%d", ttl)
			}
			etag := fmt.Sprintf(`"gen-%d"`, n)
			w.Header().Set("Cache-Control", cc)
			w.Header().Set("ETag", etag)
			if strings.Contains(r.Headers["if-none-match"], etag) {
				w.WriteHeader(304)
				return
			}
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Header().Set("Content-Length", fmt.Sprint(n))
			block := make([]byte, 32<<10)
			for i := range block {
				block[i] = byte('a' + i%26)
			}
			for left := n; left > 0; {
				m := len(block)
				if left < m {
					m = left
				}
				if _, err := w.Write(block[:m]); err != nil {
					return
				}
				left -= m
			}
		})
	}
	if *status {
		srv.HandleDynamic("/server-status", flash.DynamicFunc(
			func(req *httpmsg.Request) (int, string, io.ReadCloser, error) {
				// Stats() folds the per-shard snapshots with the
				// store-wide state (shared chunk tier, fill counters)
				// that no single shard owns; the per-shard breakdown
				// below is a separate snapshot round.
				st := srv.Stats()
				shards := srv.ShardStats()
				if parseQuery(req.Query)["format"] == "json" {
					js, err := json.MarshalIndent(statusJSON{
						ConnEngine: srv.ConnEngine(),
						Stats:      st,
						Shards:     shards,
						Proxy:      srv.ProxyStats(),
					}, "", "  ")
					if err != nil {
						return 500, "text/plain", io.NopCloser(strings.NewReader(err.Error())), nil
					}
					return 200, "application/json", io.NopCloser(strings.NewReader(string(js) + "\n")), nil
				}
				var b strings.Builder
				fmt.Fprintf(&b, "flashd status\n=============\n")
				fmt.Fprintf(&b, "conn engine:   %s\n", srv.ConnEngine())
				fmt.Fprintf(&b, "accepted:      %d\n", st.Accepted)
				fmt.Fprintf(&b, "active:        %d\n", st.Active)
				fmt.Fprintf(&b, "open conns:    %d (idle: %d)\n", st.OpenConns, st.IdleConns)
				fmt.Fprintf(&b, "responses:     %d\n", st.Responses)
				fmt.Fprintf(&b, "not found:     %d\n", st.NotFound)
				fmt.Fprintf(&b, "errors:        %d\n", st.Errors)
				fmt.Fprintf(&b, "bytes sent:    %d (sendfile: %d, copied: %d)\n",
					st.BytesSent, st.BytesSendfile, st.BytesCopied)
				fmt.Fprintf(&b, "helper jobs:   %d\n", st.HelperJobs)
				fmt.Fprintf(&b, "dynamic calls: %d\n", st.DynamicCalls)
				fmt.Fprintf(&b, "path cache:    %.1f%% hit (%d/%d)\n",
					100*st.PathCache.HitRate(), st.PathCache.Hits, st.PathCache.Hits+st.PathCache.Misses)
				fmt.Fprintf(&b, "header cache:  %.1f%% hit\n", 100*st.HeaderCache.HitRate())
				fmt.Fprintf(&b, "map cache:     %.1f%% hit, %d bytes mapped (L1 + shared tier)\n",
					100*st.MapCache.HitRate(), st.MapCache.BytesMapped-st.MapCache.BytesUnmapped)
				fmt.Fprintf(&b, "shared tier:   %.1f%% hit, %d bytes resident\n",
					100*st.SharedChunks.HitRate(), st.SharedChunks.BytesMapped-st.SharedChunks.BytesUnmapped)
				fmt.Fprintf(&b, "fills:         started=%d joined=%d completed=%d failed=%d\n",
					st.Fills.Started, st.Fills.Joined, st.Fills.Completed, st.Fills.Failed)
				fmt.Fprintf(&b, "overload:      rejected=%d shed=%d shed-reval=%d fd-pressure=%d idle-reaped=%d\n",
					st.ConnsRejected, st.ShedRequests, st.ShedRevalidates,
					st.FdPressure, st.IdleReaped)
				if proxies := srv.ProxyStats(); len(proxies) > 0 {
					fmt.Fprintf(&b, "\nreverse proxy\n")
					fmt.Fprintf(&b, "requests:      %d (hits: %d, fills: %d, revalidated: %d, pass-through: %d, errors: %d, stale-served: %d)\n",
						st.ProxyRequests, st.ProxyHits, st.ProxyFills,
						st.ProxyRevalidated, st.ProxyPassThrough, st.ProxyErrors,
						st.ProxyStale)
					for _, p := range proxies {
						for _, bk := range p.Pool.Backends {
							fmt.Fprintf(&b, "%s %s: breaker=%s reqs=%d fail=%d dials=%d reuses=%d retries=%d idle=%d\n",
								p.Prefix, bk.Addr, bk.Breaker, bk.Requests, bk.Failures,
								bk.Dials, bk.Reuses, bk.Retries, bk.IdleConns)
						}
					}
				}
				fmt.Fprintf(&b, "\nper-shard (%d event loops)\n", srv.NumShards())
				for i, ss := range shards {
					fmt.Fprintf(&b, "shard %2d: accepted=%d open=%d idle=%d responses=%d bytes=%d path-hit=%.1f%%\n",
						i, ss.Accepted, ss.OpenConns, ss.IdleConns, ss.Responses, ss.BytesSent, 100*ss.PathCache.HitRate())
				}
				return 200, "text/plain", io.NopCloser(strings.NewReader(b.String())), nil
			}))
	}

	// Graceful shutdown on SIGINT/SIGTERM.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		log.Println("flashd: shutting down")
		srv.Shutdown(5 * time.Second)
		os.Exit(0)
	}()

	log.Printf("flashd: serving %s on %s (%d shards, %d helpers each)",
		*root, *addr, srv.NumShards(), *helpers)
	if len(cfg.Upstream) > 0 {
		log.Printf("flashd: proxying %s to %s", cfg.UpstreamPrefix, strings.Join(cfg.Upstream, ", "))
	}
	if err := srv.ListenAndServe(*addr); err != nil && err != flash.ErrServerClosed {
		log.Fatalf("flashd: %v", err)
	}
}

// statusJSON is the ?format=json shape of /server-status.
type statusJSON struct {
	ConnEngine string                 `json:"conn_engine"`
	Stats      flash.Stats            `json:"stats"`
	Shards     []flash.Stats          `json:"shards"`
	Proxy      []flash.ProxyPoolStats `json:"proxy,omitempty"`
}

// parseQuery splits a raw query string into a key→value map; repeated
// keys keep the first value, un-valued keys map to "". No %-decoding —
// the status/demo knobs never need it.
func parseQuery(raw string) map[string]string {
	q := map[string]string{}
	for _, kv := range strings.Split(raw, "&") {
		if kv == "" {
			continue
		}
		k, v, _ := strings.Cut(kv, "=")
		if _, dup := q[k]; !dup {
			q[k] = v
		}
	}
	return q
}
