// Wanclients: sweep the number of concurrent persistent connections
// against the AMPED and MP architectures (a condensed Figure 12),
// showing why per-connection processes fail under WAN concurrency while
// the event-driven core stays flat.
package main

import (
	"fmt"
	"time"

	"repro/internal/arch"
	"repro/internal/client"
	"repro/internal/experiments"
	"repro/internal/simos"
	"repro/internal/workload"
)

func main() {
	tr := workload.Generate(workload.RiceECE()).Truncate(90 << 20)
	fmt.Println("concurrent persistent connections vs bandwidth (Solaris, 90 MB dataset)")
	fmt.Printf("%-10s %-12s %-12s %-14s\n", "clients", "Flash Mb/s", "MP Mb/s", "MP processes")

	for _, n := range []int{16, 64, 150, 300, 500} {
		row := make(map[string]float64)
		var mpProcs int
		for _, o := range []arch.Options{arch.FlashOptions(), arch.MPOptions()} {
			if o.Kind == arch.MP {
				o.SpawnPerConn = true
				o.MaxProcs = 600
			}
			r := experiments.Run(experiments.RunConfig{
				Profile: simos.Solaris(),
				Server:  o,
				Trace:   tr,
				Clients: client.Config{
					NumClients: n,
					KeepAlive:  true,
					RTT:        25 * time.Millisecond,
				},
				Warmup:  8 * time.Second,
				Window:  15 * time.Second,
				Prewarm: true,
			})
			row[o.Name] = r.Summary.MbitPerSec()
			if o.Kind == arch.MP {
				mpProcs = r.Machine.LiveProcs()
			}
		}
		fmt.Printf("%-10d %-12.1f %-12.1f %-14d\n", n, row["Flash"], row["MP"], mpProcs)
	}

	fmt.Println("\nFlash holds one file descriptor and a little state per connection;")
	fmt.Println("MP holds a whole process, whose memory comes out of the file cache")
	fmt.Println("(§4.2 'Long-lived connections').")
}
