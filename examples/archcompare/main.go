// Archcompare: run the paper's four architectures (plus the Apache and
// Zeus models) on one simulated machine configuration and a disk-bound
// trace, showing the architectural comparison of §6 in miniature.
package main

import (
	"fmt"
	"time"

	"repro/internal/arch"
	"repro/internal/client"
	"repro/internal/experiments"
	"repro/internal/simos"
	"repro/internal/workload"
)

func main() {
	// An ECE-like trace truncated past the cache size: disk-bound, the
	// regime where architecture matters most.
	tr := workload.Generate(workload.RiceECE()).Truncate(120 << 20)
	fmt.Printf("workload: %d requests over %.0f MB (cache is ~110 MB)\n\n",
		len(tr.Entries), float64(tr.DatasetBytes())/(1<<20))
	fmt.Printf("%-10s %-10s %-10s %-12s %-10s %s\n",
		"server", "Mb/s", "req/s", "disk util", "CPU util", "notes")

	servers := []arch.Options{
		arch.FlashOptions(),
		arch.FlashSMPOptions(4),
		arch.SPEDOptions(),
		arch.MTOptions(),
		arch.MPOptions(),
		arch.ApacheOptions(),
		arch.ZeusOptions(2),
	}
	notes := map[string]string{
		"Flash":     "AMPED: helpers keep the disk busy, loop never blocks",
		"Flash-SMP": "4 AMPED shards, split caches (pays on a uniprocessor)",
		"SPED":      "every miss stalls the whole server",
		"MT":        "32 threads, shared caches under locks",
		"MP":        "32 processes, private caches, less memory for files",
		"Apache":    "MP without the caching optimizations",
		"Zeus":      "tuned SPED, two processes",
	}

	for _, o := range servers {
		r := experiments.Run(experiments.RunConfig{
			Profile: simos.Solaris(),
			Server:  o,
			Trace:   tr,
			Clients: client.Config{NumClients: 64},
			Warmup:  8 * time.Second,
			Window:  20 * time.Second,
			Prewarm: true,
		})
		fmt.Printf("%-10s %-10.1f %-10.0f %-12.2f %-10.2f %s\n",
			o.Name,
			r.Summary.MbitPerSec(),
			r.Summary.RequestsPerSec(),
			r.Machine.Disk.Utilization(),
			r.Machine.CPU.Utilization(),
			notes[o.Name])
	}

	fmt.Println("\nThe AMPED result is the paper's thesis: single-process event-driven")
	fmt.Println("efficiency on hits, with helper processes overlapping disk reads so a")
	fmt.Println("miss never stops the server (compare SPED's disk utilization).")
	fmt.Println("Flash-SMP shards AMPED across 4 event loops with private caches: on")
	fmt.Println("this simulated uniprocessor it can only pay (split caches shrink the")
	fmt.Println("hit rate, as with MP) — the real server's BenchmarkShardScaling shows")
	fmt.Println("the multi-core side of the trade.")
}
