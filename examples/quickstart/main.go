// Quickstart: start a Flash server on a generated document root, fetch
// a few files over real HTTP, and print the cache statistics — the
// smallest end-to-end use of the public API.
package main

import (
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"

	"repro"
)

func main() {
	// A small document root.
	root, err := os.MkdirTemp("", "flash-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)
	files := map[string]string{
		"index.html":     "<html><body><h1>Flash quickstart</h1></body></html>",
		"about.html":     "<html><body>About this server.</body></html>",
		"notes/todo.txt": "1. read the paper\n2. run the benchmarks\n",
	}
	for rel, content := range files {
		path := filepath.Join(root, rel)
		os.MkdirAll(filepath.Dir(path), 0o755)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			log.Fatal(err)
		}
	}

	// The server: AMPED architecture, defaults everywhere.
	srv, err := repro.New(repro.Config{DocRoot: root})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(l)
	base := "http://" + l.Addr().String()
	fmt.Printf("serving %s at %s\n\n", root, base)

	// Fetch everything twice: the second pass hits all three caches.
	for pass := 1; pass <= 2; pass++ {
		for _, path := range []string{"/", "/about.html", "/notes/todo.txt"} {
			resp, err := http.Get(base + path)
			if err != nil {
				log.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			fmt.Printf("pass %d  GET %-16s -> %d (%d bytes)\n",
				pass, path, resp.StatusCode, len(body))
		}
	}

	st := srv.Stats()
	fmt.Printf("\nresponses:    %d\n", st.Responses)
	fmt.Printf("path cache:   %.0f%% hit rate\n", 100*st.PathCache.HitRate())
	fmt.Printf("header cache: %.0f%% hit rate\n", 100*st.HeaderCache.HitRate())
	fmt.Printf("map cache:    %.0f%% hit rate\n", 100*st.MapCache.HitRate())
	fmt.Printf("helper jobs:  %d (first pass only — hits bypass the helpers)\n", st.HelperJobs)
}
