// Dynamic: serve CGI-style dynamic content (§5.6) through the Handler
// v2 API. Each handler runs on its own goroutine — the stand-in for
// Flash's persistent CGI processes — so a slow handler never stalls
// static serving, and with v2 a handler is a full peer of the server:
// it reads the request body, sets arbitrary response headers, and
// streams its output through the loop's flow-control pipe.
//
// The walkthrough mounts the same workload three ways:
//
//	v2 native    repro.HandlerFunc       POST /echo (reads the body)
//	v1 legacy    repro.DynamicFunc       GET /cgi-bin/slow (adapter-backed)
//	net/http     flashhttp.Adapter       GET /std/... (http.FileServer)
package main

import (
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro"
	"repro/internal/flashhttp"
	"repro/internal/httpmsg"
)

func main() {
	root, err := os.MkdirTemp("", "flash-dynamic")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)
	os.WriteFile(filepath.Join(root, "index.html"),
		[]byte("<html>static content</html>"), 0o644)
	os.WriteFile(filepath.Join(root, "ecosystem.txt"),
		[]byte("served by net/http.FileServer on a flash core\n"), 0o644)

	srv, err := repro.New(repro.Config{DocRoot: root})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	// v2 native: a POST handler that reads the request body — something
	// the v1 API could not express at all.
	srv.HandleFunc("POST", "/echo", func(w repro.ResponseWriter, r *repro.Request) {
		body, err := io.ReadAll(r.Body)
		if err != nil {
			w.WriteHeader(400)
			return
		}
		w.Header().Set("Content-Type", "text/plain")
		w.Header().Set("X-Handler", "flash-v2")
		fmt.Fprintf(w, "you posted %d bytes: %q\n", len(body), body)
	})

	// v1 legacy: the old four-value interface still works, now riding
	// on a v2 adapter. Deliberately slow, to show the §5.6 isolation:
	// static requests keep flowing while it sleeps.
	srv.HandleDynamic("/cgi-bin/slow", repro.DynamicFunc(
		func(req *httpmsg.Request) (int, string, io.ReadCloser, error) {
			time.Sleep(500 * time.Millisecond)
			return 200, "text/plain", io.NopCloser(strings.NewReader("finally done\n")), nil
		}))

	// The Go ecosystem: an unmodified net/http handler on the flash core.
	srv.Handle("", "/std/", flashhttp.Adapter(
		http.StripPrefix("/std/", http.FileServer(http.Dir(root)))))

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(l)
	base := "http://" + l.Addr().String()

	// Kick off the slow v1 request...
	slowDone := make(chan string, 1)
	go func() {
		resp, err := http.Get(base + "/cgi-bin/slow")
		if err != nil {
			slowDone <- "error: " + err.Error()
			return
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		slowDone <- strings.TrimSpace(string(body))
	}()

	// ...and measure static service while it runs.
	start := time.Now()
	served := 0
	for time.Since(start) < 400*time.Millisecond {
		resp, err := http.Get(base + "/")
		if err != nil {
			log.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		served++
	}
	fmt.Printf("served %d static requests while /cgi-bin/slow was blocked\n", served)
	fmt.Printf("slow v1 handler said: %s\n", <-slowDone)

	// POST a body to the v2 handler.
	resp, err := http.Post(base+"/echo", "text/plain", strings.NewReader("hello, handler v2"))
	if err != nil {
		log.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("v2 echo (%s): %s", resp.Header.Get("X-Handler"), body)

	// And fetch through the mounted net/http file server.
	resp, err = http.Get(base + "/std/ecosystem.txt")
	if err != nil {
		log.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("net/http adapter: %s", body)
	fmt.Printf("dynamic calls: %d\n", srv.Stats().DynamicCalls)
}
