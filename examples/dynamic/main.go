// Dynamic: serve CGI-style dynamic content (§5.6). Each handler runs on
// its own goroutine — the stand-in for Flash's persistent CGI
// processes — so a slow handler never stalls static serving.
package main

import (
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro"
	"repro/internal/httpmsg"
)

func main() {
	root, err := os.MkdirTemp("", "flash-dynamic")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)
	os.WriteFile(filepath.Join(root, "index.html"),
		[]byte("<html>static content</html>"), 0o644)

	srv, err := repro.New(repro.Config{DocRoot: root})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	// A fast handler: echo the query string.
	srv.HandleDynamic("/cgi-bin/echo", repro.DynamicFunc(
		func(req *httpmsg.Request) (int, string, io.ReadCloser, error) {
			body := fmt.Sprintf("you sent: %q\n", req.Query)
			return 200, "text/plain", io.NopCloser(strings.NewReader(body)), nil
		}))

	// A deliberately slow handler: static requests keep flowing while
	// it sleeps (the §5.6 isolation property).
	srv.HandleDynamic("/cgi-bin/slow", repro.DynamicFunc(
		func(req *httpmsg.Request) (int, string, io.ReadCloser, error) {
			time.Sleep(500 * time.Millisecond)
			return 200, "text/plain", io.NopCloser(strings.NewReader("finally done\n")), nil
		}))

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(l)
	base := "http://" + l.Addr().String()

	// Kick off the slow request...
	slowDone := make(chan string, 1)
	go func() {
		resp, err := http.Get(base + "/cgi-bin/slow")
		if err != nil {
			slowDone <- "error: " + err.Error()
			return
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		slowDone <- strings.TrimSpace(string(body))
	}()

	// ...and measure static service while it runs.
	start := time.Now()
	served := 0
	for time.Since(start) < 400*time.Millisecond {
		resp, err := http.Get(base + "/")
		if err != nil {
			log.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		served++
	}
	fmt.Printf("served %d static requests while /cgi-bin/slow was blocked\n", served)
	fmt.Printf("slow handler said: %s\n", <-slowDone)

	resp, err := http.Get(base + "/cgi-bin/echo?greeting=hello")
	if err != nil {
		log.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("echo handler said: %s", body)
	fmt.Printf("dynamic calls: %d\n", srv.Stats().DynamicCalls)
}
