// Tracereplay: synthesize a small ECE-profile trace, materialize its
// files into a document root, serve them with the real Flash server,
// and replay the trace with closed-loop clients — the paper's
// trace-driven methodology (§6.2) against the real implementation.
package main

import (
	"bufio"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/workload"
)

func main() {
	// A scaled-down ECE trace (the full profile would write 220 MB).
	cfg := workload.RiceECE()
	cfg.NumFiles = 400
	cfg.DatasetBytes = 8 << 20
	cfg.Requests = 4000
	tr := workload.Generate(cfg)
	fmt.Printf("trace: %d requests, %d files, %.1f MB dataset, %.1f KB mean transfer\n",
		len(tr.Entries), tr.NumFiles(), float64(tr.DatasetBytes())/(1<<20), tr.MeanTransfer()/1024)

	// Materialize the file population.
	root, err := os.MkdirTemp("", "flash-tracereplay")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)
	for path, size := range tr.Files {
		full := filepath.Join(root, filepath.FromSlash(path))
		os.MkdirAll(filepath.Dir(full), 0o755)
		f, err := os.Create(full)
		if err != nil {
			log.Fatal(err)
		}
		w := bufio.NewWriter(f)
		for i := int64(0); i < size; i++ {
			w.WriteByte(byte('a' + i%26))
		}
		w.Flush()
		f.Close()
	}

	// Serve it.
	srv, err := repro.New(repro.Config{DocRoot: root})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(l)
	base := "http://" + l.Addr().String()

	// Replay with 16 closed-loop clients sharing a cursor.
	var cursor, responses atomic.Int64
	var bytes atomic.Int64
	const clients = 16
	deadline := time.Now().Add(3 * time.Second)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{}
			for time.Now().Before(deadline) {
				e := tr.Entries[int(cursor.Add(1)-1)%len(tr.Entries)]
				resp, err := client.Get(base + e.Path)
				if err != nil {
					continue
				}
				n, _ := io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				responses.Add(1)
				bytes.Add(n)
			}
		}()
	}
	start := time.Now()
	wg.Wait()
	elapsed := time.Since(start)

	st := srv.Stats()
	fmt.Printf("\nreplayed %d requests in %v with %d clients\n",
		responses.Load(), elapsed.Round(time.Millisecond), clients)
	fmt.Printf("throughput:  %.1f req/s, %.2f Mb/s\n",
		float64(responses.Load())/elapsed.Seconds(),
		float64(bytes.Load())*8/1e6/elapsed.Seconds())
	fmt.Printf("cache hits:  path %.0f%%, header %.0f%%, chunks %.0f%%\n",
		100*st.PathCache.HitRate(), 100*st.HeaderCache.HitRate(), 100*st.MapCache.HitRate())
	fmt.Printf("helper jobs: %d for %d distinct files\n", st.HelperJobs, tr.NumFiles())
}
