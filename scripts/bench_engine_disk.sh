#!/usr/bin/env bash
# bench_engine_disk.sh — heap-vs-mmap cache engine sweep against a real
# disk (the regime BenchmarkEngineZipf deliberately avoids: there the
# docroot is page-cache-warm so the fill transports hit DRAM; here the
# page cache is defeated between runs so fills pay real I/O).
#
# For each engine this script:
#   1. seeds a Zipf-shaped docroot ~10x the chunk-cache budget,
#   2. drops the kernel page cache (echo 3 > drop_caches — needs root;
#      without root the first run's fills warm the cache for the second
#      and the comparison measures nothing),
#   3. starts `flashd -cache-engine <engine>` cold,
#   4. drives it with `loadgen -zipf-*` for the configured duration,
#   5. samples the server's VmRSS (peak and final) from /proc. Read it
#      with care: resident mapped file pages COUNT toward VmRSS, so
#      the two engines can show similar numbers — the difference is
#      what the pages are. The heap engine's budget is anonymous
#      memory duplicating bytes the page cache also holds (double
#      buffering, the paper's section 4.3 complaint); the mmap
#      engine's budget IS the page cache's copy, mapped in — clean,
#      shared, and reclaimable under memory pressure without swap.
#      System-wide cached-file memory (free(1)'s "buff/cache") drops
#      by roughly the budget on the mmap engine.
#
# An O_DIRECT baseline (dd iflag=direct over the docroot) is printed
# first when root is unavailable, as a sanity number for raw device
# latency — but drop_caches is the supported way to run the sweep.
#
# Usage: scripts/bench_engine_disk.sh [docroot-dir]
#   FILES=640 FILE_KB=256 MAP_MB=16 CLIENTS=64 DURATION=30s SKEW=1.1
#   variables override the sweep shape.

set -euo pipefail

ROOT=${1:-$(mktemp -d /tmp/flash-disk-sweep.XXXXXX)}
FILES=${FILES:-640}
FILE_KB=${FILE_KB:-256}
MAP_MB=${MAP_MB:-16} # budget: FILES*FILE_KB should be ~10x this
CLIENTS=${CLIENTS:-64}
DURATION=${DURATION:-30s}
SKEW=${SKEW:-1.1}
ADDR=${ADDR:-127.0.0.1:8090}
OUT=${OUT:-/tmp/flash-disk-sweep}

cd "$(dirname "$0")/.."
go build -o "$OUT-flashd" ./cmd/flashd
go build -o "$OUT-loadgen" ./cmd/loadgen

mkdir -p "$ROOT/zipf"
if [ ! -f "$ROOT/zipf/f00000.bin" ]; then
    echo "seeding $FILES x ${FILE_KB}KiB under $ROOT/zipf ..."
    for i in $(seq 0 $((FILES - 1))); do
        head -c $((FILE_KB * 1024)) /dev/urandom \
            >"$ROOT/zipf/$(printf 'f%05d.bin' "$i")"
    done
fi

drop_caches() {
    sync
    if [ -w /proc/sys/vm/drop_caches ]; then
        echo 3 >/proc/sys/vm/drop_caches
        echo "  page cache dropped"
    elif command -v sudo >/dev/null && sudo -n true 2>/dev/null; then
        echo 3 | sudo tee /proc/sys/vm/drop_caches >/dev/null
        echo "  page cache dropped (sudo)"
    else
        echo "  WARNING: cannot drop the page cache (need root)."
        echo "  Raw-device sanity number via O_DIRECT instead:"
        dd if="$ROOT/zipf/f00000.bin" of=/dev/null iflag=direct bs=64k 2>&1 |
            tail -1 | sed 's/^/    /' || true
        echo "  Engine numbers below compare a WARM page cache only."
    fi
}

rss_kb() { awk '/^VmRSS/ {print $2}' "/proc/$1/status" 2>/dev/null || echo 0; }

for engine in heap mmap; do
    echo "=== engine=$engine ==="
    drop_caches
    "$OUT-flashd" -root "$ROOT" -addr "$ADDR" -cache-engine "$engine" \
        -cache-map-mb "$MAP_MB" -sendfile-threshold 0 \
        >"$OUT-$engine.log" 2>&1 &
    SRV=$!
    trap 'kill $SRV 2>/dev/null || true' EXIT
    sleep 0.5

    peak=0
    (while kill -0 "$SRV" 2>/dev/null; do
        cur=$(rss_kb "$SRV")
        [ "$cur" -gt "$peak" ] && peak=$cur && echo "$peak" >"$OUT-$engine.rss"
        sleep 0.2
    done) &
    MON=$!

    "$OUT-loadgen" -addr "$ADDR" -clients "$CLIENTS" -duration "$DURATION" \
        -keepalive -zipf-files "$FILES" -zipf-skew "$SKEW" \
        -json "$OUT-$engine.json" | sed 's/^/  /'

    final=$(rss_kb "$SRV")
    kill "$SRV" 2>/dev/null || true
    wait "$SRV" 2>/dev/null || true
    kill "$MON" 2>/dev/null || true
    peak=$(cat "$OUT-$engine.rss" 2>/dev/null || echo "$final")
    echo "  VmRSS: final ${final} KiB, peak ${peak} KiB"
    echo "  summary json: $OUT-$engine.json"
done

echo
echo "Compare requests/s + MB/s across $OUT-{heap,mmap}.json and the"
echo "VmRSS lines above. Same budget (${MAP_MB} MiB) both runs, but the"
echo "heap engine's is anonymous memory on top of the page cache's copy"
echo "of the same bytes, while the mmap engine's is the page cache copy"
echo "itself (clean, shared, reclaimable): one copy of file data in the"
echo "system instead of two."
