#!/usr/bin/env bash
# soak_overload.sh — graceful-degradation drill: a well-behaved
# keep-alive fleet shares the server with an abusive minority (~30% of
# clients) while the admission-control knobs are armed. The question
# the soak answers: what does abuse cost the well-behaved tenants, and
# does the server degrade by shedding (fast, well-formed 503 +
# Retry-After) rather than by collapsing (timeouts, stuck accept loop,
# OOM)?
#
# Two phases against one flashd:
#   baseline  the normal fleet alone — warm-hit throughput and latency
#             with no abuse, the comparison point.
#   overload  the normal fleet plus the abusive minority:
#               - a miss-storm fleet drawing Zipf over more cold files
#                 than the chunk cache can hold, aborting a fraction of
#                 responses mid-body (-abort-frac) and honoring
#                 Retry-After backoff on every 503,
#               - a slowloris fleet trickling request bytes at a few
#                 hundred B/s (-slow-write-bps).
#
# The server runs one event loop and one disk helper so the abusive
# miss storm actually backs up the helper queue (shed watermark), and
# -max-conns sits at the combined steady-state fleet size so the
# abort/reconnect churn trips accept-time rejects. Overload events land
# as counters on /server-status (ConnsRejected / ShedRequests /
# IdleReaped ...); snapshots are saved after each phase so the deltas
# attribute every 503 on the wire to a server-side decision.
#
# Usage: scripts/soak_overload.sh
#   DURATION=20s NORMAL=28 ABUSIVE=8 SLOW=4 MAX_CONNS=40 SHED_QUEUE=4
#   ADDR=127.0.0.1:8094 variables override.

set -euo pipefail

DURATION=${DURATION:-20s}
NORMAL=${NORMAL:-28}    # well-behaved keep-alive clients
ABUSIVE=${ABUSIVE:-8}   # miss-storm + mid-body-abort clients
SLOW=${SLOW:-4}         # slowloris clients (slow request writes)
MAX_CONNS=${MAX_CONNS:-$((NORMAL + ABUSIVE + SLOW))}
SHED_QUEUE=${SHED_QUEUE:-1}
ZIPF_FILES=${ZIPF_FILES:-2048}
ADDR=${ADDR:-127.0.0.1:8094}
OUT=${OUT:-/tmp/flash-overload-soak}

cd "$(dirname "$0")/.."
go build -o "$OUT-flashd" ./cmd/flashd
go build -o "$OUT-loadgen" ./cmd/loadgen

# Docroot: one hot file for the warm path, plus a cold set bigger than
# the chunk-cache budget below so the abusive fleet's Zipf draw keeps
# the single disk helper busy.
ROOT=$(mktemp -d /tmp/flash-overload-root.XXXXXX)
echo "hello, overload world" >"$ROOT/index.html"
mkdir -p "$ROOT/zipf"
python3 - "$ROOT/zipf" "$ZIPF_FILES" <<'EOF'
import os, sys
root, n = sys.argv[1], int(sys.argv[2])
body = bytes(range(256)) * 128  # 32 KiB per file
for i in range(n):
    with open(os.path.join(root, "f%05d.bin" % i), "wb") as f:
        f.write(body)
EOF

"$OUT-flashd" -root "$ROOT" -addr "$ADDR" -status \
    -loops 1 -helpers 1 -cache-map-mb 8 \
    -max-conns "$MAX_CONNS" -shed-queue "$SHED_QUEUE" -retry-after 1 \
    >"$OUT-flashd.log" 2>&1 &
SRV=$!
trap 'kill $SRV 2>/dev/null || true' EXIT
sleep 0.5
if ! kill -0 "$SRV" 2>/dev/null; then
    echo "server failed to start:" && sed 's/^/  /' "$OUT-flashd.log"
    exit 1
fi

snapshot() { curl -s "http://$ADDR/server-status?format=json" >"$OUT-$1.status.json"; }

echo "=== phase 1: baseline ($NORMAL keep-alive clients, no abuse) ==="
"$OUT-loadgen" -addr "$ADDR" -clients "$NORMAL" -keepalive \
    -duration "$DURATION" -json "$OUT-baseline.json" | sed 's/^/  /'
snapshot baseline

echo "=== phase 2: overload ($NORMAL normal + $ABUSIVE miss-storm + $SLOW slowloris) ==="
"$OUT-loadgen" -addr "$ADDR" -clients "$ABUSIVE" -keepalive \
    -zipf-files "$ZIPF_FILES" -zipf-skew 1.02 -zipf-path-fmt "/zipf/f%05d.bin" \
    -abort-frac 0.4 -honor-retry-after \
    -duration "$DURATION" -json "$OUT-abusive.json" >"$OUT-abusive.log" 2>&1 &
ABUSE=$!
"$OUT-loadgen" -addr "$ADDR" -clients "$SLOW" \
    -slow-write-bps 300 -honor-retry-after \
    -duration "$DURATION" -json "$OUT-slowloris.json" >"$OUT-slowloris.log" 2>&1 &
LORIS=$!
"$OUT-loadgen" -addr "$ADDR" -clients "$NORMAL" -keepalive \
    -duration "$DURATION" -json "$OUT-normal.json" | sed 's/^/  /'
wait $ABUSE $LORIS || true
snapshot final

kill $SRV 2>/dev/null || true
wait $SRV 2>/dev/null || true

echo
python3 - "$OUT" <<'EOF'
import json, sys
out = sys.argv[1]
load = lambda n: json.load(open(f"{out}-{n}.json"))
base, norm = load("baseline"), load("normal")
abuse, loris = load("abusive"), load("slowloris")
s0 = json.load(open(f"{out}-baseline.status.json"))["stats"]
s1 = json.load(open(f"{out}-final.status.json"))["stats"]
d = {k: s1[k] - s0[k] for k in
     ("ConnsRejected", "ShedRequests", "ShedRevalidates", "FdPressure",
      "IdleReaped", "Responses", "Errors")}

print("well-behaved fleet, baseline vs under 30% abusive traffic:")
for name, j in (("baseline", base), ("overload", norm)):
    l = j["latency_usec"]
    print(f"  {name:9s} {j['requests_per_sec']:9.1f} req/s   "
          f"p50 {l['p50']/1000:.2f} ms   p99 {l['p99']/1000:.2f} ms   "
          f"errors {j['errors']}")
keep = 100 * norm["requests_per_sec"] / base["requests_per_sec"]
print(f"  retained {keep:.1f}% of baseline throughput")

print("abusive fleets (what the server did to them):")
for name, j in (("miss-storm", abuse), ("slowloris", loris)):
    sc = j["status_counts"]
    print(f"  {name:10s} {j['responses']} responses, "
          f"503={sc.get('service_unavailable_503', 0)}, "
          f"aborted={j.get('aborted', 0)}, "
          f"retry-waits={j.get('retry_waits', 0)}, "
          f"p50 {j['latency_usec']['p50']/1000:.2f} ms")

print("server-side overload decisions (overload-phase deltas):")
print("  " + "  ".join(f"{k}={v}" for k, v in d.items()))
json.dump({"baseline": base, "normal_under_abuse": norm,
           "abusive": abuse, "slowloris": loris, "server_deltas": d},
          open(f"{out}-summary.json", "w"), indent=1)
print(f"\ncombined summary: {out}-summary.json")
EOF
