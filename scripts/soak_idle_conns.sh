#!/usr/bin/env bash
# soak_idle_conns.sh — per-idle-connection server cost, goroutine vs
# epoll engine. This is the measurement the epoll engine exists for:
# the goroutine engine parks 3 goroutines (reader, writer, serve) per
# keep-alive connection, ~8+ KiB of stacks plus channel/timer state
# each; the epoll engine parks the same connection as one fd slot in a
# readiness loop plus a ~200-byte npConn record.
#
# For each engine this script:
#   1. starts `flashd -conn-engine <engine>` with a long idle timeout,
#   2. samples the server's baseline VmRSS,
#   3. opens an idle keep-alive fleet with `loadgen -open-conns N
#      -idle-frac 1.0` (each conn performs one priming exchange, then
#      sits perfectly quiet),
#   4. waits for the fleet to settle and /server-status to report the
#      expected open/idle gauges, samples VmRSS again,
#   5. reports (after - before) / N as bytes per idle connection.
#
# Fleet sizing vs file descriptors: each connection costs one fd in
# the server process and one in the fleet process, and both run under
# their own `ulimit -n`. The default CONNS=10000 fits the common
# 20000/20480 container limit; pass CONNS=100000 on a host with the
# limit raised (>= CONNS + slack in BOTH processes) to reproduce the
# paper-scale number. The script prints the current limit and refuses
# fleets that cannot fit.
#
# Usage: scripts/soak_idle_conns.sh
#   CONNS=10000 SETTLE=10 ADDR=127.0.0.1:8093 variables override.

set -euo pipefail

CONNS=${CONNS:-10000}
SETTLE=${SETTLE:-10}
ADDR=${ADDR:-127.0.0.1:8093}
OUT=${OUT:-/tmp/flash-idle-soak}

NOFILE=$(ulimit -n)
echo "ulimit -n: $NOFILE (fleet of $CONNS needs ~$((CONNS + 200)) per process)"
if [ "$NOFILE" != "unlimited" ] && [ "$NOFILE" -lt $((CONNS + 200)) ]; then
    echo "error: fleet of $CONNS does not fit in ulimit -n $NOFILE;"
    echo "lower CONNS or raise the limit (ulimit -n $((CONNS + 1000)))"
    exit 1
fi

cd "$(dirname "$0")/.."
go build -o "$OUT-flashd" ./cmd/flashd
go build -o "$OUT-loadgen" ./cmd/loadgen

ROOT=$(mktemp -d /tmp/flash-idle-soak-root.XXXXXX)
echo "hello, idle world" >"$ROOT/index.html"

rss_kb() { awk '/^VmRSS/ {print $2}' "/proc/$1/status" 2>/dev/null || echo 0; }

for engine in goroutine epoll; do
    echo "=== conn-engine=$engine ==="
    # madvdontneed makes freed heap leave VmRSS immediately (the
    # default MADV_FREE keeps it resident until memory pressure), and
    # GOGC=20 keeps the collector's ceiling close to the live set —
    # both engines run identically configured, so the soak compares
    # live per-conn state instead of GC headroom over accept-time
    # garbage.
    GODEBUG=madvdontneed=1 GOGC=20 \
        "$OUT-flashd" -root "$ROOT" -addr "$ADDR" -conn-engine "$engine" \
        -status -idle-timeout 10m >"$OUT-$engine.log" 2>&1 &
    SRV=$!
    trap 'kill $SRV 2>/dev/null || true' EXIT
    sleep 0.5
    if ! kill -0 "$SRV" 2>/dev/null; then
        echo "  server failed to start:" && sed 's/^/    /' "$OUT-$engine.log"
        exit 1
    fi

    before=$(rss_kb "$SRV")
    echo "  baseline VmRSS: ${before} KiB"

    # The fleet: CONNS keep-alive conns, all idle after one exchange.
    # Duration bounds the hold; sampling happens while it runs.
    "$OUT-loadgen" -addr "$ADDR" -clients 1 -keepalive \
        -open-conns "$CONNS" -idle-frac 1.0 \
        -duration $((SETTLE + 20))s -json "$OUT-$engine-fleet.json" \
        >"$OUT-$engine-fleet.log" 2>&1 &
    GEN=$!

    sleep "$SETTLE"
    curl -s "http://$ADDR/server-status" | grep -E 'conn engine|open conns' |
        sed 's/^/  /' || true
    after=$(rss_kb "$SRV")
    per_conn=$(((after - before) * 1024 / CONNS))
    echo "  soaked VmRSS: ${after} KiB (+$((after - before)) KiB)"
    echo "  per idle conn: ~${per_conn} B"
    echo "$engine $CONNS $before $after $per_conn" >>"$OUT.dat"

    kill "$GEN" 2>/dev/null || true
    wait "$GEN" 2>/dev/null || true
    kill "$SRV" 2>/dev/null || true
    wait "$SRV" 2>/dev/null || true
done

echo
echo "Per-conn numbers land in $OUT.dat (engine conns before after bytes)."
echo "The goroutine engine's number is dominated by three 4+ KiB goroutine"
echo "stacks per conn; the epoll engine's by one pooled read buffer and a"
echo "~200 B npConn record — the BENCH_8.json acceptance ratio (epoll at"
echo "most 1/5 of goroutine per-conn) comes from these two lines."
