#!/usr/bin/env bash
# bench_proxy.sh — reverse-proxy tier sweep: warm-hit vs proxied-miss
# vs revalidate, the three costs a caching proxy can charge for the
# same byte count.
#
# Topology: loadgen -> flashd proxy (-upstream) -> flashd origin
# (-demo's /gen origin simulator: deterministic body, stable ETag,
# honest 304s, per-request freshness knobs in the query string). All
# three processes share the box, so compare the modes against each
# other, not against isolated-host numbers.
#
# Modes (all keep-alive, same 16 KiB payload):
#   warm_hit   one hot target, ttl=3600: request 1 fills, the rest are
#              local cache hits — the proxy's ceiling, no origin I/O.
#   miss       near-uniform Zipf over 50k distinct targets: virtually
#              every request is a cold fill (origin fetch + cache
#              insert + stream-through) — the proxy's floor.
#   revalidate Zipf over 2k no-cache targets: entries cache but every
#              stale hit costs a conditional GET answered 304 — body
#              bytes from local cache, freshness from the origin. (The
#              shard clock ticks at 100ms, so a just-revalidated entry
#              serves fresh for up to that long: the mode is a hit/
#              revalidate mix, which is exactly how no-cache content
#              behaves in production.)
#
# After each run the proxy's /server-status?format=json is saved too
# (per-backend dials/reuses: reuse ratio should be ~1 — the origin leg
# rides keep-alive conns, not per-request dials).
#
# Usage: scripts/bench_proxy.sh
#   CLIENTS=64 DURATION=10s BYTES=16384 variables override the shape.

set -euo pipefail

CLIENTS=${CLIENTS:-64}
DURATION=${DURATION:-10s}
BYTES=${BYTES:-16384}
ORIGIN_ADDR=${ORIGIN_ADDR:-127.0.0.1:8097}
PROXY_ADDR=${PROXY_ADDR:-127.0.0.1:8098}
OUT=${OUT:-/tmp/flash-proxy-bench}

cd "$(dirname "$0")/.."
go build -o "$OUT-flashd" ./cmd/flashd
go build -o "$OUT-loadgen" ./cmd/loadgen

ROOT=$(mktemp -d /tmp/flash-proxy-root.XXXXXX)
echo ok >"$ROOT/index.html"

"$OUT-flashd" -root "$ROOT" -addr "$ORIGIN_ADDR" -demo \
    >"$OUT-origin.log" 2>&1 &
ORIGIN=$!
"$OUT-flashd" -root "$ROOT" -addr "$PROXY_ADDR" -status \
    -upstream "$ORIGIN_ADDR" -upstream-prefix /gen \
    >"$OUT-proxy.log" 2>&1 &
PROXY=$!
trap 'kill $ORIGIN $PROXY 2>/dev/null || true' EXIT
sleep 0.5

run() { # run <mode> <loadgen args...>
    local mode=$1
    shift
    echo "=== mode=$mode ==="
    "$OUT-loadgen" -addr "$PROXY_ADDR" -clients "$CLIENTS" \
        -duration "$DURATION" -keepalive -json "$OUT-$mode.json" "$@" |
        sed 's/^/  /'
    curl -s "http://$PROXY_ADDR/server-status?format=json" \
        >"$OUT-$mode.status.json" || true
    echo "  summary json: $OUT-$mode.json"
}

run warm_hit -path "/gen?bytes=$BYTES&ttl=3600"
run miss -zipf-files 50000 -zipf-skew 1.02 \
    -zipf-path-fmt "/gen?bytes=$BYTES&ttl=3600&r=%05d"
run revalidate -zipf-files 2000 -zipf-skew 1.02 \
    -zipf-path-fmt "/gen?bytes=$BYTES&cc=no-cache&r=%04d"

echo
echo "Compare requests/s and p99 across $OUT-{warm_hit,miss,revalidate}.json."
echo "Proxy counters (hits/fills/revalidated, per-backend reuse ratio) are"
echo "in the matching *.status.json snapshots."
