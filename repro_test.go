package repro

import (
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/httpmsg"
)

// TestFacadeEndToEnd exercises the re-exported public API exactly as
// README's quickstart does.
func TestFacadeEndToEnd(t *testing.T) {
	root := t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "index.html"),
		[]byte("<html>facade</html>"), 0o644); err != nil {
		t.Fatal(err)
	}

	srv, err := New(Config{DocRoot: root})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	srv.HandleDynamic("/api/", DynamicFunc(
		func(req *httpmsg.Request) (int, string, io.ReadCloser, error) {
			return 200, "text/plain", io.NopCloser(strings.NewReader("dynamic")), nil
		}))

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	base := "http://" + l.Addr().String()

	resp, err := http.Get(base + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "facade") {
		t.Fatalf("static: %d %q", resp.StatusCode, body)
	}

	resp, err = http.Get(base + "/api/x")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "dynamic" {
		t.Fatalf("dynamic: %q", body)
	}

	st := srv.Stats()
	if st.Responses < 2 || st.DynamicCalls != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFacadeConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
}
