package repro

// One benchmark per evaluation figure of the paper (6-12), each running
// the corresponding experiment in quick mode and reporting its headline
// metric, plus ablation benchmarks for the design decisions DESIGN.md
// calls out (disk scheduling, helper concurrency, header alignment,
// per-process cache splitting).
//
// Full-fidelity figure data comes from `go run ./cmd/flashbench`; these
// benches keep the whole suite runnable in minutes while exercising the
// identical code paths.

import (
	"math"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/client"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/simos"
	"repro/internal/workload"
)

// reportFigure runs one experiment per iteration and reports a metric
// from it.
func reportFigure(b *testing.B, id string, series string, x float64, unit string, tableIdx int) {
	b.Helper()
	e := experiments.ByID(id)
	if e == nil {
		b.Fatalf("unknown experiment %s", id)
	}
	var last float64
	for i := 0; i < b.N; i++ {
		tables := e.Run(experiments.Quality{Quick: true})
		tb := tables[tableIdx]
		s := tb.Get(series)
		if s == nil {
			b.Fatalf("%s: series %q missing", id, series)
		}
		last = s.Y(x)
		if math.IsNaN(last) {
			b.Fatalf("%s/%s: no point at %v", id, series, x)
		}
	}
	b.ReportMetric(last, unit)
}

// BenchmarkFig6SolarisBandwidth reports Flash's 200 KB cached-file
// bandwidth on the Solaris profile (Figure 6, left panel).
func BenchmarkFig6SolarisBandwidth(b *testing.B) {
	reportFigure(b, "fig6", "Flash", 200, "Mb/s", 0)
}

// BenchmarkFig6SolarisConnRate reports Flash's small-file connection
// rate on Solaris (Figure 6, right panel).
func BenchmarkFig6SolarisConnRate(b *testing.B) {
	reportFigure(b, "fig6", "Flash", 0.5, "req/s", 1)
}

// BenchmarkFig7FreeBSDBandwidth reports Flash's 200 KB bandwidth on the
// FreeBSD profile (Figure 7, left panel).
func BenchmarkFig7FreeBSDBandwidth(b *testing.B) {
	reportFigure(b, "fig7", "Flash", 200, "Mb/s", 0)
}

// BenchmarkFig7FreeBSDConnRate reports Flash's small-file connection
// rate on FreeBSD (Figure 7, right panel).
func BenchmarkFig7FreeBSDConnRate(b *testing.B) {
	reportFigure(b, "fig7", "Flash", 0.5, "req/s", 1)
}

// BenchmarkFig8CSTrace reports Flash's bandwidth on the CS trace
// (Figure 8; Flash is server index 4).
func BenchmarkFig8CSTrace(b *testing.B) {
	reportFigure(b, "fig8", "CS trace", 4, "Mb/s", 0)
}

// BenchmarkFig8OwlnetTrace reports Flash's bandwidth on the Owlnet
// trace (Figure 8).
func BenchmarkFig8OwlnetTrace(b *testing.B) {
	reportFigure(b, "fig8", "Owlnet trace", 4, "Mb/s", 0)
}

// BenchmarkFig9DiskBound reports Flash's disk-bound bandwidth at the
// 150 MB dataset point on FreeBSD (Figure 9).
func BenchmarkFig9DiskBound(b *testing.B) {
	reportFigure(b, "fig9", "Flash", 150, "Mb/s", 0)
}

// BenchmarkFig10DiskBound reports the same point on Solaris (Figure 10).
func BenchmarkFig10DiskBound(b *testing.B) {
	reportFigure(b, "fig10", "Flash", 150, "Mb/s", 0)
}

// BenchmarkFig11NoCaching reports the no-caching configuration's
// small-file rate (Figure 11's bottom curve).
func BenchmarkFig11NoCaching(b *testing.B) {
	reportFigure(b, "fig11", "no caching", 0.5, "req/s", 0)
}

// BenchmarkFig11FullFlash reports full Flash on the same workload
// (Figure 11's top curve).
func BenchmarkFig11FullFlash(b *testing.B) {
	reportFigure(b, "fig11", "all (Flash)", 0.5, "req/s", 0)
}

// BenchmarkFig12Concurrency reports Flash's bandwidth at 500 persistent
// connections (Figure 12).
func BenchmarkFig12Concurrency(b *testing.B) {
	reportFigure(b, "fig12", "Flash", 500, "Mb/s", 0)
}

// --- Ablations ---

// diskBoundTrace is shared by the ablation benches: an ECE trace
// truncated past the cache size.
func diskBoundTrace() *workload.Trace {
	return workload.Generate(workload.RiceECE()).Truncate(130 << 20)
}

func runOnce(prof simos.Profile, o arch.Options, tr *workload.Trace, ccfg client.Config) metrics.Summary {
	return experiments.Run(experiments.RunConfig{
		Profile: prof,
		Server:  o,
		Trace:   tr,
		Clients: ccfg,
		Warmup:  2 * time.Second,
		Window:  6 * time.Second,
		Prewarm: true,
	}).Summary
}

// BenchmarkAblationDiskScheduling compares the elevator (tagged
// queueing) against FIFO service for the AMPED server on a disk-bound
// workload — the §4.1 "disk utilization" argument.
func BenchmarkAblationDiskScheduling(b *testing.B) {
	tr := diskBoundTrace()
	var elev, fifo float64
	for i := 0; i < b.N; i++ {
		prof := simos.FreeBSD()
		elev = runOnce(prof, arch.FlashOptions(), tr, client.Config{NumClients: 64}).MbitPerSec()
		prof.Disk.Policy = 0 // simdisk.FIFO
		fifo = runOnce(prof, arch.FlashOptions(), tr, client.Config{NumClients: 64}).MbitPerSec()
	}
	b.ReportMetric(elev, "elevator-Mb/s")
	b.ReportMetric(fifo, "fifo-Mb/s")
}

// BenchmarkAblationHelperCount compares AMPED with 1 vs 32 helpers on a
// disk-bound workload: one helper serializes disk reads (SPED-like);
// "Flash only needs enough helpers to keep the disk busy."
func BenchmarkAblationHelperCount(b *testing.B) {
	tr := diskBoundTrace()
	var one, many float64
	for i := 0; i < b.N; i++ {
		o := arch.FlashOptions()
		o.MaxHelpers = 1
		one = runOnce(simos.FreeBSD(), o, tr, client.Config{NumClients: 64}).MbitPerSec()
		o.MaxHelpers = 32
		many = runOnce(simos.FreeBSD(), o, tr, client.Config{NumClients: 64}).MbitPerSec()
	}
	b.ReportMetric(one, "helpers1-Mb/s")
	b.ReportMetric(many, "helpers32-Mb/s")
}

// BenchmarkAblationHeaderAlignment compares aligned and misaligned
// response headers on a large cached file (§5.5).
func BenchmarkAblationHeaderAlignment(b *testing.B) {
	tr := workload.SingleFile(128 << 10)
	var aligned, misaligned float64
	for i := 0; i < b.N; i++ {
		o := arch.SPEDOptions()
		aligned = runOnce(simos.FreeBSD(), o, tr, client.Config{NumClients: 64}).MbitPerSec()
		o.AlignedHeaders = false
		misaligned = runOnce(simos.FreeBSD(), o, tr, client.Config{NumClients: 64}).MbitPerSec()
	}
	b.ReportMetric(aligned, "aligned-Mb/s")
	b.ReportMetric(misaligned, "misaligned-Mb/s")
}

// BenchmarkAblationSharedVsSplitCaches compares MT's shared caches
// against MP's per-process caches on a cached trace — §4.2
// "Application-level Caching".
func BenchmarkAblationSharedVsSplitCaches(b *testing.B) {
	tr := workload.Generate(workload.Owlnet())
	var shared, split float64
	for i := 0; i < b.N; i++ {
		shared = runOnce(simos.Solaris(), arch.MTOptions(), tr, client.Config{NumClients: 64}).MbitPerSec()
		split = runOnce(simos.Solaris(), arch.MPOptions(), tr, client.Config{NumClients: 64}).MbitPerSec()
	}
	b.ReportMetric(shared, "sharedMT-Mb/s")
	b.ReportMetric(split, "splitMP-Mb/s")
}

// BenchmarkAblationLockTuning compares tuned MT against the coarse-lock
// variant of Figure 10's note ("without this effort the disk-bound
// results otherwise resembled Flash-SPED").
func BenchmarkAblationLockTuning(b *testing.B) {
	tr := diskBoundTrace()
	var tuned, untuned float64
	for i := 0; i < b.N; i++ {
		tuned = runOnce(simos.Solaris(), arch.MTOptions(), tr, client.Config{NumClients: 64}).MbitPerSec()
		untuned = runOnce(simos.Solaris(), arch.MTUntunedOptions(), tr, client.Config{NumClients: 64}).MbitPerSec()
	}
	b.ReportMetric(tuned, "tunedMT-Mb/s")
	b.ReportMetric(untuned, "untunedMT-Mb/s")
}

// BenchmarkAblationResidencyPolicy compares mincore-based residency
// testing against the §5.7 feedback heuristic, cached and disk-bound.
func BenchmarkAblationResidencyPolicy(b *testing.B) {
	cached := workload.SingleFile(2 << 10)
	disk := diskBoundTrace()
	var mincoreCached, heurCached, mincoreDisk, heurDisk float64
	for i := 0; i < b.N; i++ {
		mincoreCached = runOnce(simos.FreeBSD(), arch.FlashOptions(), cached, client.Config{NumClients: 64}).RequestsPerSec()
		heurCached = runOnce(simos.FreeBSD(), arch.FlashHeuristicOptions(), cached, client.Config{NumClients: 64}).RequestsPerSec()
		mincoreDisk = runOnce(simos.FreeBSD(), arch.FlashOptions(), disk, client.Config{NumClients: 64}).MbitPerSec()
		heurDisk = runOnce(simos.FreeBSD(), arch.FlashHeuristicOptions(), disk, client.Config{NumClients: 64}).MbitPerSec()
	}
	b.ReportMetric(mincoreCached, "mincore-req/s")
	b.ReportMetric(heurCached, "heuristic-req/s")
	b.ReportMetric(mincoreDisk, "mincore-Mb/s")
	b.ReportMetric(heurDisk, "heuristic-Mb/s")
}

// BenchmarkAblationMultipleDisks tests §4.1's disk-utilization claim:
// a second spindle helps AMPED (helpers queue on both) but not SPED
// (one outstanding request total).
func BenchmarkAblationMultipleDisks(b *testing.B) {
	tr := diskBoundTrace()
	var flash1, flash2, sped1, sped2 float64
	for i := 0; i < b.N; i++ {
		p1, p2 := simos.FreeBSD(), simos.FreeBSD()
		p2.NumDisks = 2
		flash1 = runOnce(p1, arch.FlashOptions(), tr, client.Config{NumClients: 64}).MbitPerSec()
		flash2 = runOnce(p2, arch.FlashOptions(), tr, client.Config{NumClients: 64}).MbitPerSec()
		sped1 = runOnce(p1, arch.SPEDOptions(), tr, client.Config{NumClients: 64}).MbitPerSec()
		sped2 = runOnce(p2, arch.SPEDOptions(), tr, client.Config{NumClients: 64}).MbitPerSec()
	}
	b.ReportMetric(flash1, "flash1disk-Mb/s")
	b.ReportMetric(flash2, "flash2disk-Mb/s")
	b.ReportMetric(sped1, "sped1disk-Mb/s")
	b.ReportMetric(sped2, "sped2disk-Mb/s")
}

// BenchmarkSimulatorEventRate measures raw simulator throughput
// (virtual events per wall second) on a cached workload.
func BenchmarkSimulatorEventRate(b *testing.B) {
	tr := workload.SingleFile(8 << 10)
	for i := 0; i < b.N; i++ {
		runOnce(simos.FreeBSD(), arch.FlashOptions(), tr, client.Config{NumClients: 64})
	}
}
