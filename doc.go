// Package repro is a reproduction of "Flash: An Efficient and Portable
// Web Server" (Pai, Druschel, Zwaenepoel — USENIX Annual Technical
// Conference, 1999).
//
// The module contains two halves:
//
//   - A real, runnable web server in the paper's AMPED architecture
//     (internal/flash), whose public API this package re-exports —
//     scaled to modern multi-core hardware as N independent AMPED
//     shards (Config.EventLoops, default one per CPU). Each shard is an
//     event-loop goroutine owning private pathname/header/chunk caches
//     with zero locks, fed round-robin by the acceptor, with helper
//     goroutines absorbing all blocking disk I/O, 32-byte-aligned
//     response headers, and CGI-style dynamic content handlers.
//     EventLoops=1 is the paper's single-process configuration.
//
//     On top of the 1.0-era core sits an HTTP/1.1 conformance layer:
//     default persistent connections with request pipelining (strict
//     in-order responses through each connection's single writer),
//     single-range Range/If-Range requests answered 206/416 by
//     clamping the chunk-cache walk to the byte window, strong
//     (size, mtime) ETags with If-None-Match handling alongside
//     If-Modified-Since, and chunked transfer-encoding for dynamic
//     handlers so 1.1 responses persist without a pre-known
//     Content-Length. A raw-socket torture suite and parser fuzzing
//     (FuzzParseRequest) lock the behaviour down; Config knobs
//     (DisableRanges, DisableETags, DisableChunked) restore the
//     paper-faithful subset.
//
//     Dynamic content goes through the Handler v2 API — the full-peer
//     analogue of the paper's §5.6 CGI processes: a Handler runs on
//     its own goroutine, reads a streaming request Body (Content-
//     Length or chunked framing, Expect: 100-continue answered on
//     first read, Config.MaxBodyBytes limits with per-route
//     overrides, unread bodies drained before the next pipelined
//     request), and writes through a ResponseWriter whose output
//     flows through the event loop one pipe buffer at a time. Routing
//     is method + longest-prefix with 405/Allow on method misses,
//     registered before Serve. The v1 DynamicHandler interface
//     remains as a byte-equivalent adapter, and internal/flashhttp
//     mounts any unmodified net/http.Handler on the same surface.
//
//     The response data path is one body-source pipeline with two
//     static transports, chosen per response by
//     Config.SendfileThreshold: small bodies walk the mapped-chunk
//     cache and leave in a header-gathering writev (§5.5), while large
//     bodies ship zero-copy from the pathname cache's refcounted file
//     descriptor via sendfile(2) on Linux — never entering userspace
//     or double-buffering in the map cache — with a portable
//     pread+write fallback on other platforms. Stats.BytesSendfile
//     and Stats.BytesCopied split the traffic by transport, and a
//     byte-for-byte equivalence suite holds the two to identical wire
//     output.
//
//     The steady-state hot path is allocation-free: a warm keep-alive
//     static cache hit (and a 304 revalidation) performs zero heap
//     allocations per request across reader, event loop, and writer —
//     zero-copy request parsing into a recycled per-connection
//     Request, pooled response sources, typed loop messages instead
//     of closures, cached entity tags and 304 headers, and
//     coarse-clock deadline arming. AllocsPerRun guard tests and the
//     CI bench-guard job (BenchmarkSteadyState vs the committed
//     BENCH_5.json baseline) enforce the invariant; see README
//     "Performance" for the per-path budgets.
//
//   - A deterministic simulation of the paper's 1999 testbed
//     (internal/sim*, internal/arch, internal/experiments) that rebuilds
//     the four server architectures — AMPED, SPED, MP, MT — from one
//     request-processing code base plus sharded-AMPED (Flash-SMP),
//     Apache, and Zeus behavioural models, and regenerates every
//     evaluation figure (6-12). Run `go run ./cmd/flashbench` to
//     reproduce them.
//
// Quick start:
//
//	srv, err := repro.New(repro.Config{DocRoot: "./public"})
//	if err != nil { ... }
//	log.Fatal(srv.ListenAndServe(":8080"))
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and experiment index, and EXPERIMENTS.md for the
// paper-vs-measured results.
package repro

import "repro/internal/flash"

// Server is an AMPED-architecture web server (see flash.Server).
type Server = flash.Server

// Config configures a Server (see flash.Config).
type Config = flash.Config

// Stats is a snapshot of server counters (see flash.Stats).
type Stats = flash.Stats

// Handler is the v2 dynamic-content interface: a full peer of the
// server that reads the request body and writes arbitrary headers and
// body through a ResponseWriter (see flash.Handler).
type Handler = flash.Handler

// HandlerFunc adapts a function to Handler.
type HandlerFunc = flash.HandlerFunc

// ResponseWriter assembles a Handler's response (see
// flash.ResponseWriter).
type ResponseWriter = flash.ResponseWriter

// Request is a Handler's view of one request, including its streaming
// Body (see flash.Request).
type Request = flash.Request

// Header holds a Handler's response header fields (see flash.Header).
type Header = flash.Header

// Route is one handler registration: method, path prefix, handler,
// and an optional per-route body cap (see flash.Route).
type Route = flash.Route

// DynamicHandler is the v1 dynamic-content interface, kept as a thin
// adapter over Handler (see flash.DynamicHandler).
type DynamicHandler = flash.DynamicHandler

// DynamicFunc adapts a function to DynamicHandler.
type DynamicFunc = flash.DynamicFunc

// ErrServerClosed is returned by Serve after Close or Shutdown.
var ErrServerClosed = flash.ErrServerClosed

// New creates a Flash server from cfg.
func New(cfg Config) (*Server, error) { return flash.New(cfg) }
